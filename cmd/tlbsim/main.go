// Command tlbsim runs load-balancing scenarios and prints their
// metrics — the quickest way to poke at the simulator.
//
// Usage examples:
//
//	tlbsim -scheme tlb -workload websearch -load 0.6 -flows 500
//	tlbsim -scheme ecmp -workload datamining -load 0.3
//	tlbsim -scheme letflow -workload mix -shorts 100 -longs 3
//	tlbsim -spec examples/quickstart/spec.json
//	tlbsim -spec 'specs/*.json' -workers 4
//	tlbsim -spec examples/quickstart/spec.json -report run.html
//	tlbsim -serve 127.0.0.1:8080
//	tlbsim -list-schemes
//
// Every run is a scenario spec: the workload flags assemble one
// internally (print it with -dump-spec), and -spec runs specs straight
// from JSON files — any scheme in the registry with any parameters,
// no Go required.
//
// Workloads (flag mode):
//
//	websearch   Poisson arrivals, DCTCP web-search flow sizes
//	datamining  Poisson arrivals, VL2 data-mining flow sizes
//	mix         static mix of -shorts short and -longs long flows on a
//	            2-leaf fabric (the paper's §6.1 environment)
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"tlb/internal/lb"
	"tlb/internal/report"
	"tlb/internal/serve"
	"tlb/internal/sim"
	"tlb/internal/spec"
	"tlb/internal/trace"
	"tlb/internal/units"

	// The tlb scheme registers itself with the lb registry.
	_ "tlb/internal/core"
)

func main() {
	var (
		scheme   = flag.String("scheme", "tlb", "load balancer scheme (see -list-schemes)")
		load     = flag.Float64("load", 0.5, "fabric load for Poisson workloads (0..1)")
		flows    = flag.Int("flows", 500, "number of flows for Poisson workloads")
		wl       = flag.String("workload", "websearch", "websearch, datamining or mix")
		shorts   = flag.Int("shorts", 100, "short flows (mix workload)")
		longs    = flag.Int("longs", 3, "long flows (mix workload)")
		seed     = flag.Uint64("seed", 1, "RNG seed")
		leaves   = flag.Int("leaves", 8, "leaf switches (Poisson workloads)")
		spines   = flag.Int("spines", 8, "spine switches")
		hosts    = flag.Int("hosts", 16, "hosts per leaf")
		deadline = flag.Duration("deadline", 0, "TLB deadline override (e.g. 10ms); 0 = default")
		traceN   = flag.Int("trace", 0, "print the last N flow lifecycle events after the run")

		specPaths = flag.String("spec", "", "comma-separated spec files or globs to run instead of the flag-built scenario")
		checkOnly = flag.Bool("check-spec", false, "with -spec: validate the files and exit without running")
		workers   = flag.Int("workers", 0, "concurrent runs for multi-file -spec batches (0 = GOMAXPROCS)")
		shards    = flag.Int("shards", 0, "spatial shards per run (clamped per topology); results are byte-identical at any shard count")
		dumpSpec  = flag.String("dump-spec", "", "write the flag-built scenario's spec JSON to this path (\"-\" = stdout) and exit")
		list      = flag.Bool("list-schemes", false, "list registered schemes and their parameters, then exit")

		serveAddr  = flag.String("serve", "", "serve the run-submission HTTP API on this address (e.g. 127.0.0.1:8080) instead of running locally")
		reportPath = flag.String("report", "", "also write a self-contained HTML report of the run(s) to this path")
	)
	flag.Parse()

	if *list {
		listSchemes(os.Stdout)
		return
	}

	if err := run(options{
		scheme: strings.ToLower(*scheme), wl: strings.ToLower(*wl),
		load: *load, flows: *flows, shorts: *shorts, longs: *longs,
		seed: *seed, leaves: *leaves, spines: *spines, hosts: *hosts,
		deadline: units.Time(deadline.Nanoseconds()), traceN: *traceN,
		specPaths: *specPaths, checkOnly: *checkOnly,
		workers: *workers, shards: *shards, dumpSpec: *dumpSpec,
		serveAddr: *serveAddr, reportPath: *reportPath,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "tlbsim:", err)
		os.Exit(1)
	}
}

type options struct {
	scheme, wl            string
	load                  float64
	flows, shorts, longs  int
	seed                  uint64
	leaves, spines, hosts int
	deadline              units.Time
	traceN                int
	specPaths, dumpSpec   string
	checkOnly             bool
	workers               int
	shards                int
	serveAddr             string
	reportPath            string
}

func run(o options) error {
	if o.serveAddr != "" {
		return serveMode(o.serveAddr, o.workers)
	}
	if o.specPaths != "" {
		files, err := expandSpecPaths(o.specPaths)
		if err != nil {
			return err
		}
		if o.checkOnly {
			return checkSpecs(files)
		}
		return runSpecFiles(files, o.workers, o.shards, o.traceN, o.reportPath)
	}
	if o.checkOnly {
		return fmt.Errorf("-check-spec needs -spec")
	}

	sp, err := flagSpec(o)
	if err != nil {
		return err
	}
	if o.dumpSpec != "" {
		return writeSpec(sp, o.dumpSpec)
	}
	return runOne(sp, o.shards, o.traceN, o.reportPath)
}

// serveMode runs the HTTP API until the process is killed.
func serveMode(addr string, workers int) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := serve.New(serve.Options{Workers: workers})
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "tlbsim: serving on http://%s (POST /runs, GET /runs/{id}/events, GET /runs/{id}/report, DELETE /runs/{id})\n", ln.Addr())
	return http.Serve(ln, srv)
}

// flagSpec assembles the scenario spec the workload flags describe.
func flagSpec(o options) (*spec.Spec, error) {
	mkTopo := func(l, s, h int) spec.Topology {
		return spec.Topology{
			Leaves: l, Spines: s, HostsPerLeaf: h,
			HostLink:   spec.Link{Bandwidth: spec.Bw(units.Gbps), Delay: spec.Dur(5 * units.Microsecond)},
			FabricLink: spec.Link{Bandwidth: spec.Bw(units.Gbps), Delay: spec.Dur(10 * units.Microsecond)},
			Queue:      spec.Queue{Capacity: 256, ECNThreshold: 20},
		}
	}
	deadlines := &spec.Deadlines{
		Min: spec.Dur(5 * units.Millisecond), Max: spec.Dur(25 * units.Millisecond),
		OnlyBelow: spec.Sz(100 * units.KB),
	}

	sp := &spec.Spec{
		Version: spec.Version,
		Name:    fmt.Sprintf("%s-%s", o.scheme, o.wl),
		Seed:    o.seed,
		Scheme:  spec.Scheme{Name: o.scheme},
		Run: spec.Run{
			MaxTime:      spec.Dur(60 * units.Second),
			StopWhenDone: true,
		},
	}
	// The deadline override only means something to tlb; other schemes
	// ignore it, matching the flag's historical behavior.
	if o.deadline > 0 && o.scheme == "tlb" {
		sp.Scheme.Params = spec.Params{"deadline": string(spec.Dur(o.deadline))}
	}

	switch o.wl {
	case "websearch", "datamining":
		sp.Topology = mkTopo(o.leaves, o.spines, o.hosts)
		sizes := &spec.SizeDist{Kind: "websearch", Truncate: spec.Sz(20 * units.MB)}
		if o.wl == "datamining" {
			sizes = &spec.SizeDist{Kind: "datamining", Truncate: spec.Sz(50 * units.MB)}
		}
		sp.Workload = spec.Workload{
			Kind: "poisson", Flows: o.flows, Load: o.load,
			Sizes: sizes, Deadlines: deadlines,
		}
	case "mix":
		sp.Topology = mkTopo(2, 15, 15)
		sp.Workload = spec.Workload{
			Kind: "mix",
			Groups: []spec.MixGroup{{
				Shorts:        o.shorts,
				Longs:         o.longs,
				ShortSizes:    &spec.SizeDist{Kind: "uniform", Min: spec.Sz(40 * units.KB), Max: spec.Sz(100 * units.KB)},
				LongSizes:     &spec.SizeDist{Kind: "fixed", Size: spec.Sz(10 * units.MB)},
				ArrivalJitter: spec.Dur(20 * units.Millisecond),
			}},
			Deadlines: deadlines,
		}
	default:
		return nil, fmt.Errorf("unknown workload %q (websearch, datamining, mix)", o.wl)
	}
	return sp, nil
}

// expandSpecPaths splits the comma-separated -spec value and expands
// each part that contains glob metacharacters.
func expandSpecPaths(arg string) ([]string, error) {
	var files []string
	for _, part := range strings.Split(arg, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if strings.ContainsAny(part, "*?[") {
			matches, err := filepath.Glob(part)
			if err != nil {
				return nil, fmt.Errorf("bad pattern %q: %v", part, err)
			}
			if len(matches) == 0 {
				return nil, fmt.Errorf("pattern %q matches no files", part)
			}
			files = append(files, matches...)
			continue
		}
		files = append(files, part)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("-spec names no files")
	}
	return files, nil
}

// checkSpecs validates every file, reporting all problems before
// failing.
func checkSpecs(files []string) error {
	bad := 0
	for _, f := range files {
		sp, err := spec.Load(f)
		if err == nil {
			err = sp.Validate()
		}
		if err != nil {
			bad++
			fmt.Fprintf(os.Stderr, "%s: %v\n", f, err)
			continue
		}
		fmt.Printf("%s: ok\n", f)
	}
	if bad > 0 {
		return fmt.Errorf("%d of %d specs invalid", bad, len(files))
	}
	return nil
}

// runSpecFiles compiles and runs the spec files; multi-file batches go
// through the sweep worker pool and report each result in input order.
func runSpecFiles(files []string, workers, shards, traceN int, reportPath string) error {
	if len(files) == 1 {
		sp, err := spec.Load(files[0])
		if err != nil {
			return err
		}
		return runOne(sp, shards, traceN, reportPath)
	}
	if traceN > 0 {
		return fmt.Errorf("-trace needs a single scenario, got %d spec files", len(files))
	}
	specs := make([]*spec.Spec, len(files))
	scenarios := make([]sim.Scenario, len(files))
	tracers := make([]*trace.Tracer, len(files))
	for i, f := range files {
		sp, err := spec.Load(f)
		if err != nil {
			return err
		}
		specs[i] = sp
		scenarios[i], err = sp.Compile()
		if err != nil {
			return err
		}
		if shards > 0 {
			scenarios[i].Shards = shards
		}
		if reportPath != "" && len(sp.Faults) > 0 && scenarios[i].Shards <= 1 {
			tracers[i] = trace.New(0).WithFilter(trace.Filter{Kinds: []trace.EventKind{trace.LinkFault}})
			scenarios[i].Tracer = tracers[i]
		}
	}
	results, err := sim.RunSweep(scenarios, sim.SweepOptions{
		Workers: workers,
		Progress: func(p sim.SweepProgress) {
			status := "done"
			if p.Err != nil {
				status = "FAILED"
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s %s (%v)\n",
				p.Completed, p.Total, p.Scenario, status, p.Elapsed.Round(time.Millisecond))
		},
	})
	if err != nil {
		return err
	}
	for i, res := range results {
		if i > 0 {
			fmt.Println()
		}
		printResult(res)
	}
	if reportPath != "" {
		items := make([]report.Item, len(results))
		for i, res := range results {
			items[i] = report.Item{
				Scenario: specs[i].Name, Scheme: schemeLabel(specs[i]),
				Result: res, Faults: tracers[i].Events(),
			}
		}
		return writeReport(reportPath, report.Campaign{Title: "tlbsim batch", Items: items})
	}
	return nil
}

// runOne compiles and runs a single spec, with optional sharding and
// tracing (mutually exclusive: the sharded runner rejects a tracer).
func runOne(sp *spec.Spec, shards, traceN int, reportPath string) error {
	sc, err := sp.Compile()
	if err != nil {
		return err
	}
	if shards > 0 {
		sc.Shards = shards
	}
	var tr *trace.Tracer
	switch {
	case traceN > 0:
		tr = trace.New(traceN)
		sc.Tracer = tr
	case reportPath != "" && len(sp.Faults) > 0 && sc.Shards <= 1:
		// The report's fault timeline needs the LinkFault events.
		sc.Tracer = trace.New(0).WithFilter(trace.Filter{Kinds: []trace.EventKind{trace.LinkFault}})
	}
	res, err := sim.Run(sc)
	if err != nil {
		return err
	}
	printResult(res)
	if tr != nil {
		fmt.Println("--- trace ---")
		tr.Dump(os.Stdout)
		fmt.Println("--- trace summary ---")
		tr.Summary(os.Stdout)
	}
	if reportPath != "" {
		c := report.Campaign{Title: "tlbsim run " + sp.Name, Items: []report.Item{{
			Scenario: sp.Name, Scheme: schemeLabel(sp),
			Result: res, Faults: sc.Tracer.Events(),
		}}}
		return writeReport(reportPath, c)
	}
	return nil
}

func schemeLabel(sp *spec.Spec) string {
	if sp.Scheme.Label != "" {
		return sp.Scheme.Label
	}
	return sp.Scheme.Name
}

func writeReport(path string, c report.Campaign) error {
	if err := os.WriteFile(path, report.HTML(c), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tlbsim: report written to %s\n", path)
	return nil
}

// writeSpec marshals the spec to path ("-" = stdout).
func writeSpec(sp *spec.Spec, path string) error {
	data, err := sp.Marshal()
	if err != nil {
		return err
	}
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// listSchemes prints the registry: every scheme, its doc line, and its
// parameter schema.
func listSchemes(w *os.File) {
	for _, name := range lb.Names() {
		r, ok := lb.Lookup(name)
		if !ok {
			continue
		}
		fmt.Fprintf(w, "%s\n    %s\n", r.Name, r.Doc)
		for _, p := range r.Params {
			fmt.Fprintf(w, "    %-16s %-10s %s\n", p.Name, p.Kind, p.Doc)
		}
	}
}

func printResult(res *sim.Result) {
	fmt.Printf("scenario        %s\n", res.Scenario)
	fmt.Printf("sim time        %v\n", res.EndTime)
	fmt.Printf("flows           %d (%d short, %d long), %d completed\n",
		res.Count(sim.AllFlows), res.Count(sim.ShortFlows), res.Count(sim.LongFlows),
		res.CompletedCount(sim.AllFlows))
	fmt.Printf("drops           %d\n", res.Drops)
	fmt.Printf("short AFCT      %v\n", res.AFCT(sim.ShortFlows))
	fmt.Printf("short 99th FCT  %v\n", res.FCTPercentile(sim.ShortFlows, 99))
	fmt.Printf("deadline misses %.1f%%\n", res.DeadlineMissRatio(sim.ShortFlows)*100)
	fmt.Printf("long AFCT       %v\n", res.AFCT(sim.LongFlows))
	fmt.Printf("long goodput    %.3f Gbps/flow\n", float64(res.Goodput(sim.LongFlows))/1e9)
	fmt.Printf("short OOO ratio %.4f\n", res.OutOfOrderRatio(sim.ShortFlows))
	fmt.Printf("long OOO ratio  %.4f\n", res.OutOfOrderRatio(sim.LongFlows))
	fmt.Printf("uplink util     %.3f\n", res.UplinkUtilization())
	fmt.Printf("retransmits     %d (timeouts %d)\n",
		res.TotalRetransmits(sim.AllFlows), res.TotalTimeouts(sim.AllFlows))
}
