// Command tlbsim runs a single load-balancing scenario and prints its
// metrics — the quickest way to poke at the simulator.
//
// Usage examples:
//
//	tlbsim -scheme tlb -workload websearch -load 0.6 -flows 500
//	tlbsim -scheme ecmp -workload datamining -load 0.3
//	tlbsim -scheme letflow -workload mix -shorts 100 -longs 3
//
// Workloads:
//
//	websearch   Poisson arrivals, DCTCP web-search flow sizes
//	datamining  Poisson arrivals, VL2 data-mining flow sizes
//	mix         static mix of -shorts short and -longs long flows on a
//	            2-leaf fabric (the paper's §6.1 environment)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tlb/internal/core"
	"tlb/internal/eventsim"
	"tlb/internal/lb"
	"tlb/internal/netem"
	"tlb/internal/sim"
	"tlb/internal/topology"
	"tlb/internal/trace"
	"tlb/internal/transport"
	"tlb/internal/units"
	"tlb/internal/workload"
)

func main() {
	var (
		scheme   = flag.String("scheme", "tlb", "load balancer: ecmp, rps, presto, letflow, drill, flowbender, conga, hermes, wcmp, tlb")
		load     = flag.Float64("load", 0.5, "fabric load for Poisson workloads (0..1)")
		flows    = flag.Int("flows", 500, "number of flows for Poisson workloads")
		wl       = flag.String("workload", "websearch", "websearch, datamining or mix")
		shorts   = flag.Int("shorts", 100, "short flows (mix workload)")
		longs    = flag.Int("longs", 3, "long flows (mix workload)")
		seed     = flag.Uint64("seed", 1, "RNG seed")
		leaves   = flag.Int("leaves", 8, "leaf switches (Poisson workloads)")
		spines   = flag.Int("spines", 8, "spine switches")
		hosts    = flag.Int("hosts", 16, "hosts per leaf")
		deadline = flag.Duration("deadline", 0, "TLB deadline override (e.g. 10ms); 0 = default")
		traceN   = flag.Int("trace", 0, "print the last N flow lifecycle events after the run")
	)
	flag.Parse()

	var tr *trace.Tracer
	if *traceN > 0 {
		tr = trace.New(*traceN)
	}
	res, err := run(*scheme, *wl, *load, *flows, *shorts, *longs, *seed, *leaves, *spines, *hosts, units.Time(deadline.Nanoseconds()), tr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tlbsim:", err)
		os.Exit(1)
	}
	report(res)
	if tr != nil {
		fmt.Println("--- trace ---")
		tr.Dump(os.Stdout)
		fmt.Println("--- trace summary ---")
		tr.Summary(os.Stdout)
	}
}

func run(scheme, wl string, load float64, flows, shorts, longs int, seed uint64, leaves, spines, hostsPerLeaf int, deadline units.Time, tr *trace.Tracer) (*sim.Result, error) {
	var topo topology.Config
	var flowList []workload.Flow
	var err error

	mkTopo := func(l, s, h int) topology.Config {
		return topology.Config{
			Leaves: l, Spines: s, HostsPerLeaf: h,
			HostLink:   netem.LinkConfig{Bandwidth: units.Gbps, Delay: 5 * units.Microsecond},
			FabricLink: netem.LinkConfig{Bandwidth: units.Gbps, Delay: 10 * units.Microsecond},
			Queue:      netem.QueueConfig{Capacity: 256, ECNThreshold: 20},
		}
	}

	deadlines := workload.DeadlineDist{
		Min: 5 * units.Millisecond, Max: 25 * units.Millisecond,
		OnlyBelow: 100 * units.KB,
	}

	switch strings.ToLower(wl) {
	case "websearch", "datamining":
		topo = mkTopo(leaves, spines, hostsPerLeaf)
		var sizes workload.SizeDist
		if wl == "websearch" {
			sizes = workload.Truncated{Dist: workload.WebSearch(), Max: 20 * units.MB}
		} else {
			sizes = workload.Truncated{Dist: workload.DataMining(), Max: 50 * units.MB}
		}
		fabricCap := float64(topo.Leaves) * float64(topo.Spines) * topo.FabricLink.Bandwidth.BytesPerSecond()
		pc := workload.PoissonConfig{
			Hosts:         topo.Hosts(),
			Sizes:         sizes,
			RateOverride:  load * fabricCap / sizes.Mean(),
			Deadlines:     deadlines,
			CrossLeafOnly: true,
			LeafOf:        func(h int) int { return h / topo.HostsPerLeaf },
		}
		flowList, err = pc.Generate(eventsim.NewRNG(seed+1), flows, 0)
		if err != nil {
			return nil, err
		}
	case "mix":
		topo = mkTopo(2, 15, 15)
		senders := make([]int, topo.HostsPerLeaf)
		receivers := make([]int, topo.HostsPerLeaf)
		for i := range senders {
			senders[i], receivers[i] = i, topo.HostsPerLeaf+i
		}
		mix := workload.StaticMix{
			ShortFlows: shorts, LongFlows: longs,
			ShortSizes:    workload.Uniform{MinSize: 40 * units.KB, MaxSize: 100 * units.KB},
			LongSizes:     workload.Fixed{Size: 10 * units.MB},
			Senders:       senders,
			Receivers:     receivers,
			ArrivalJitter: 20 * units.Millisecond,
			Deadlines:     deadlines,
		}
		flowList, err = mix.Generate(eventsim.NewRNG(seed+1), 0)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("unknown workload %q", wl)
	}

	factory, err := schemeFactory(scheme, topo, deadline)
	if err != nil {
		return nil, err
	}

	return sim.Run(sim.Scenario{
		Name:         fmt.Sprintf("%s-%s", scheme, wl),
		Topology:     topo,
		Transport:    transport.DefaultConfig(),
		Balancer:     factory,
		SchemeName:   scheme,
		Seed:         seed,
		Flows:        flowList,
		Tracer:       tr,
		StopWhenDone: true,
		MaxTime:      60 * units.Second,
	})
}

func schemeFactory(name string, topo topology.Config, deadline units.Time) (lb.Factory, error) {
	switch strings.ToLower(name) {
	case "ecmp":
		return lb.ECMP(), nil
	case "rps":
		return lb.RPS(), nil
	case "presto":
		return lb.Presto(0), nil
	case "letflow":
		return lb.LetFlow(150 * units.Microsecond), nil
	case "drill":
		return lb.DRILL(2, 1), nil
	case "flowbender":
		return lb.FlowBender(lb.FlowBenderConfig{ECNThreshold: topo.Queue.ECNThreshold}), nil
	case "conga":
		return lb.CongaFlowlet(0), nil
	case "hermes":
		return lb.Hermes(lb.HermesConfig{}), nil
	case "wcmp":
		return lb.WCMP(), nil
	case "tlb":
		cfg := core.DefaultConfig()
		cfg.LinkBandwidth = topo.FabricLink.Bandwidth
		cfg.RTT = topo.BaseRTT()
		cfg.MaxQTh = topo.Queue.Capacity
		if deadline > 0 {
			cfg.Deadline = deadline
		}
		return core.Factory(cfg), nil
	default:
		return nil, fmt.Errorf("unknown scheme %q (ecmp, rps, presto, letflow, drill, flowbender, conga, hermes, wcmp, tlb)", name)
	}
}

func report(res *sim.Result) {
	fmt.Printf("scenario        %s\n", res.Scenario)
	fmt.Printf("sim time        %v\n", res.EndTime)
	fmt.Printf("flows           %d (%d short, %d long), %d completed\n",
		res.Count(sim.AllFlows), res.Count(sim.ShortFlows), res.Count(sim.LongFlows),
		res.CompletedCount(sim.AllFlows))
	fmt.Printf("drops           %d\n", res.Drops)
	fmt.Printf("short AFCT      %v\n", res.AFCT(sim.ShortFlows))
	fmt.Printf("short 99th FCT  %v\n", res.FCTPercentile(sim.ShortFlows, 99))
	fmt.Printf("deadline misses %.1f%%\n", res.DeadlineMissRatio(sim.ShortFlows)*100)
	fmt.Printf("long AFCT       %v\n", res.AFCT(sim.LongFlows))
	fmt.Printf("long goodput    %.3f Gbps/flow\n", float64(res.Goodput(sim.LongFlows))/1e9)
	fmt.Printf("short OOO ratio %.4f\n", res.OutOfOrderRatio(sim.ShortFlows))
	fmt.Printf("long OOO ratio  %.4f\n", res.OutOfOrderRatio(sim.LongFlows))
	fmt.Printf("uplink util     %.3f\n", res.UplinkUtilization())
	fmt.Printf("retransmits     %d (timeouts %d)\n",
		res.TotalRetransmits(sim.AllFlows), res.TotalTimeouts(sim.AllFlows))
}
