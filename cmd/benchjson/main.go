// Command benchjson converts `go test -bench` output on stdin into a
// tracked JSON baseline (BENCH_<pr>.json). Each invocation fills one
// section ("before" or "after") and merges with any sections already in
// the output file, so the before/after pair can be produced by separate
// runs:
//
//	go test -bench 'BenchmarkEventQueue|BenchmarkPortTransit' . | benchjson -out BENCH_8.json -section after
//
// The raw benchmark lines are preserved verbatim (benchstat-compatible:
// `jq -r '.after.raw[]' BENCH_8.json | benchstat /dev/stdin` works), and
// each line is also parsed into name / iterations / metric map so CI or
// scripts can compare allocs/op and ns/op without reparsing.
//
// Baseline files are append-only history: each PR that changes tracked
// performance writes its numbers to a NEW BENCH_<pr>.json and leaves
// earlier baselines untouched, so the trajectory the ROADMAP calls for
// stays reconstructible from the repo alone.
//
// Compare mode turns a pair of baselines into a regression gate:
//
//	benchjson -compare BENCH_4.json -metric events/sec -max-regress 10 BENCH_8.json
//
// reads both files, matches benchmarks by name over the given metric,
// and exits nonzero if the new value regresses more than -max-regress
// percent against the old "after" section (metrics ending in "/sec"
// count higher as better; all others, ns/op-style, count lower as
// better). Nothing is written in compare mode.
//
// -base-section selects which section of the old file is the baseline
// (default "after"). Passing the SAME file with -base-section before
// gates its own before->after pair — the like-for-like comparison when
// the two newest baseline files were captured in different machine
// states (shared hardware drifts between sessions; absolute events/sec
// across files then measures the host, not the code):
//
//	benchjson -compare BENCH_9.json -base-section before -metric events/sec -max-regress 10 BENCH_9.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name with any -GOMAXPROCS suffix stripped
	// (BenchmarkPortTransit-8 -> BenchmarkPortTransit) so before/after
	// sections compare by stable keys.
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Metrics maps unit -> value, e.g. "ns/op", "B/op", "allocs/op",
	// "events/sec". encoding/json emits map keys sorted, so the file is
	// deterministic.
	Metrics map[string]float64 `json:"metrics"`
}

// Section is one before/after half of the baseline file.
type Section struct {
	// Context holds the goos/goarch/pkg/cpu header lines.
	Context []string `json:"context,omitempty"`
	// Raw holds the benchmark result lines verbatim.
	Raw []string `json:"raw"`
	// Benchmarks holds the parsed form of Raw.
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_8.json", "output JSON file (merged if it exists)")
	section := flag.String("section", "after", `section to write: "before" or "after"`)
	require := flag.String("require", "", "comma-separated metric units that must appear in the parsed section (e.g. \"flows/sec,peakRSS-MB\"); missing ones fail the run")
	compare := flag.String("compare", "", "compare mode: path of the old baseline JSON; the new baseline is the positional argument")
	baseSection := flag.String("base-section", "after", `compare mode: section of the old baseline to compare against ("before" or "after")`)
	metric := flag.String("metric", "events/sec", "compare mode: metric unit to compare")
	maxRegress := flag.Float64("max-regress", 10, "compare mode: tolerated regression in percent before exiting nonzero")
	flag.Parse()
	if *compare != "" {
		if *baseSection != "before" && *baseSection != "after" {
			fmt.Fprintf(os.Stderr, "benchjson: -base-section must be \"before\" or \"after\", got %q\n", *baseSection)
			os.Exit(2)
		}
		os.Exit(runCompare(*compare, *baseSection, flag.Arg(0), *metric, *maxRegress))
	}
	if *section != "before" && *section != "after" {
		fmt.Fprintf(os.Stderr, "benchjson: -section must be \"before\" or \"after\", got %q\n", *section)
		os.Exit(2)
	}

	sec, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(sec.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines on stdin")
		os.Exit(1)
	}
	if missing := missingMetrics(sec, *require); len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: required metrics missing from input: %s\n",
			strings.Join(missing, ", "))
		os.Exit(1)
	}

	file := map[string]*Section{}
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &file); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: existing %s is not valid JSON: %v\n", *out, err)
			os.Exit(1)
		}
	}
	file[*section] = sec

	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s section %q\n",
		len(sec.Benchmarks), *out, *section)
}

// runCompare implements the regression gate: match benchmarks by name
// across the baseSection of the old baseline file and the "after"
// section of the new one, and check the given metric moved no worse
// than maxRegress percent. Returns the process exit code: 0 all within
// tolerance, 1 regression (or no comparable benchmarks — a vacuous
// pass must not look like a pass), 2 usage or file errors.
func runCompare(oldPath, baseSection, newPath, metric string, maxRegress float64) int {
	if newPath == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -compare needs the new baseline as a positional argument")
		return 2
	}
	oldSec, err := loadSection(oldPath, baseSection)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	newSec, err := loadSection(newPath, "after")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	// For rate metrics ("/sec") bigger is better; for per-op costs
	// (ns/op, B/op, allocs/op, ...) smaller is better.
	higherBetter := strings.HasSuffix(metric, "/sec")
	compared, regressed := 0, 0
	for _, nb := range newSec.Benchmarks {
		nv, ok := nb.Metrics[metric]
		if !ok {
			continue
		}
		for _, ob := range oldSec.Benchmarks {
			ov, ok := ob.Metrics[metric]
			if !ok || ob.Name != nb.Name || ov == 0 {
				continue
			}
			compared++
			var lossPct float64
			if higherBetter {
				lossPct = (ov - nv) / ov * 100
			} else {
				lossPct = (nv - ov) / ov * 100
			}
			status := "ok"
			if lossPct > maxRegress {
				status = "REGRESSION"
				regressed++
			}
			fmt.Printf("%-40s %s: %.6g -> %.6g (%+.1f%%, tolerance %.1f%%) %s\n",
				nb.Name, metric, ov, nv, -lossPct, maxRegress, status)
		}
	}
	if compared == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmarks in both %s and %s report %q — nothing compared\n",
			oldPath, newPath, metric)
		return 1
	}
	if regressed > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d of %d benchmarks regressed more than %.1f%% on %s\n",
			regressed, compared, maxRegress, metric)
		return 1
	}
	return 0
}

// loadSection reads a baseline file and returns the named section.
func loadSection(path, section string) (*Section, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	file := map[string]*Section{}
	if err := json.Unmarshal(data, &file); err != nil {
		return nil, fmt.Errorf("%s is not valid baseline JSON: %v", path, err)
	}
	sec := file[section]
	if sec == nil || len(sec.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s has no %q section with benchmarks", path, section)
	}
	return sec, nil
}

// missingMetrics checks the -require list: every named metric unit
// must appear in at least one parsed benchmark, so a baseline-writing
// pipeline fails loudly when a benchmark stops reporting the numbers
// the baseline exists to track.
func missingMetrics(sec *Section, require string) []string {
	var missing []string
	for _, want := range strings.Split(require, ",") {
		want = strings.TrimSpace(want)
		if want == "" {
			continue
		}
		found := false
		for _, b := range sec.Benchmarks {
			if _, ok := b.Metrics[want]; ok {
				found = true
				break
			}
		}
		if !found {
			missing = append(missing, want)
		}
	}
	return missing
}

func parse(sc *bufio.Scanner) (*Section, error) {
	sec := &Section{}
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), " \t")
		switch {
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "cpu:"):
			sec.Context = append(sec.Context, line)
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseLine(line)
			if !ok {
				continue // e.g. a bare "BenchmarkFoo" name line before its result
			}
			sec.Raw = append(sec.Raw, line)
			sec.Benchmarks = append(sec.Benchmarks, b)
		}
	}
	return sec, sc.Err()
}

// parseLine parses "BenchmarkName-8 123 45.6 ns/op 0 B/op 0 allocs/op".
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:       strings.TrimRight(fields[0], "-0123456789"),
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	// Undo over-trimming of names that legitimately end in a digit
	// (none today, but keep the GOMAXPROCS strip precise).
	if i := strings.LastIndexByte(fields[0], '-'); i < 0 || !allDigits(fields[0][i+1:]) {
		b.Name = fields[0]
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

func allDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}
