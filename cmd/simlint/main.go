// Command simlint runs the repository's custom static analyzer over
// the module. It enforces the determinism and unit-safety contract
// documented in DESIGN.md ("Determinism contract"): nowallclock,
// noglobalrand, maporder, floateq and unitliteral.
//
// Usage:
//
//	simlint [-C dir] [./...]
//
// simlint always lints the whole module containing dir (the module is
// small; whole-module analysis is what makes the type-based rules
// sound), so the conventional ./... pattern is accepted and implied.
// Findings print as file:line: rule: message; the exit status is 1 when
// anything is found.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"tlb/internal/lint"
)

func main() {
	dir := flag.String("C", ".", "directory inside the module to lint")
	flag.Parse()

	root, err := findModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	findings, err := lint.Run(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// findModuleRoot walks upward from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}
