// Command simlint runs the repository's custom static analyzer over
// the module. It enforces the determinism, unit-safety, ownership and
// shard-readiness contract documented in DESIGN.md ("Determinism
// contract" and "Static enforcement"): nowallclock, noglobalrand,
// maporder, floateq, unitliteral, packetown, handlelife, dimcheck and
// sharedstate, plus the directive meta-diagnostics (simlint,
// unusedallow).
//
// Usage:
//
//	simlint [-C dir] [-json] [-sarif file] [./...]
//
// simlint always lints the whole module containing dir (the module is
// small; whole-module analysis is what makes the type-based rules
// sound), so the conventional ./... pattern is accepted and implied.
//
// By default findings print as file:line: ID: rule: message. -json
// streams them as one JSON array on stdout instead; -sarif writes a
// SARIF 2.1.0 log to the named file (in addition to whichever of the
// other two formats is active), for editors and CI annotation. Every
// diagnostic carries its stable SIMxxx ID, which never changes even if
// a rule is renamed. The exit status is 1 when anything is found.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"tlb/internal/lint"
)

func main() {
	dir := flag.String("C", ".", "directory inside the module to lint")
	jsonOut := flag.Bool("json", false, "print findings as a JSON array instead of text")
	sarifOut := flag.String("sarif", "", "also write a SARIF 2.1.0 log to this file")
	flag.Parse()

	root, err := findModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	findings, err := lint.Run(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	if *jsonOut {
		if err := writeJSON(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d: %s: %s: %s\n", f.File, f.Line, f.ID(), f.Rule, f.Msg)
		}
	}
	if *sarifOut != "" {
		if err := writeSARIF(*sarifOut, findings); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			os.Exit(2)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// jsonFinding is the machine-readable shape of one finding. The id is
// the stable key; the rule name is advisory and may be renamed.
type jsonFinding struct {
	ID   string `json:"id"`
	Rule string `json:"rule"`
	File string `json:"file"`
	Line int    `json:"line"`
	Msg  string `json:"message"`
}

func writeJSON(w *os.File, findings []lint.Finding) error {
	out := make([]jsonFinding, len(findings))
	for i, f := range findings {
		out[i] = jsonFinding{ID: f.ID(), Rule: f.Rule, File: f.File, Line: f.Line, Msg: f.Msg}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0 structures, reduced to the fields CI annotators consume.

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	Name             string       `json:"name"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine int `json:"startLine"`
}

func writeSARIF(path string, findings []lint.Finding) error {
	var rules []sarifRule
	for _, name := range lint.Rules() {
		rules = append(rules, sarifRule{
			ID:               lint.RuleID(name),
			Name:             name,
			ShortDescription: sarifMessage{Text: lint.RuleDoc(name)},
		})
	}
	results := make([]sarifResult, len(findings))
	for i, f := range findings {
		results[i] = sarifResult{
			RuleID:  f.ID(),
			Level:   "error",
			Message: sarifMessage{Text: fmt.Sprintf("%s: %s", f.Rule, f.Msg)},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: f.File},
					Region:           sarifRegion{StartLine: f.Line},
				},
			}},
		}
	}
	log := sarifLog{
		Version: "2.1.0",
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "simlint", Rules: rules}},
			Results: results,
		}},
	}
	data, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// findModuleRoot walks upward from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}
