// Command experiments regenerates the paper's figures on this
// repository's simulator.
//
// Usage:
//
//	experiments -list
//	experiments -fig fig10                # one figure, default scale
//	experiments -fig fig3,fig4,fig7      # several
//	experiments -fig all -flows 400      # everything, smaller runs
//	experiments -fig ablations           # the design-choice ablations
//	experiments -fig figF1,figF2         # dynamic link-fault experiments
//
// Output is a plain-text rendering of each panel: bars as
// "label value" rows, curves as "# name" headers followed by "x y"
// rows — the series the paper plots.
//
// For performance work, -cpuprofile and -memprofile write pprof
// profiles covering the experiment runs (inspect with `go tool pprof`).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"tlb/internal/experiments"
)

func main() {
	os.Exit(run())
}

// run holds the real main body and returns the exit code, so the
// deferred profile writers below run on every path (a bare os.Exit in
// main would skip them).
func run() int {
	var (
		figs       = flag.String("fig", "all", "comma-separated experiment names, \"all\", or \"ablations\"")
		list       = flag.Bool("list", false, "list available experiments and exit")
		seed       = flag.Uint64("seed", 42, "root RNG seed (same seed = identical numbers)")
		flows      = flag.Int("flows", 800, "flows per large-scale run (fig10-12)")
		points     = flag.Int("points", 0, "cap sweep points per figure (0 = figure default)")
		workers    = flag.Int("workers", 0, "concurrent simulations per sweep (0 = GOMAXPROCS); any value produces identical figures")
		shards     = flag.Int("shards", 0, "spatial shards per simulation (clamped per topology); any shard count produces identical figures")
		quiet      = flag.Bool("q", false, "suppress progress logging")
		timing     = flag.Bool("time", false, "print wall-clock time per experiment")
		format     = flag.String("format", "plain", "output format: plain or csv")
		dumpSpecs  = flag.String("dump-specs", "", "write every scenario spec the experiments run as JSON files under this directory")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: -cpuprofile:", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: -cpuprofile:", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // report live allocations, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: -memprofile:", err)
			}
		}()
	}

	if *list {
		fmt.Printf("%-22s %-18s %s\n", "NAME", "PAPER", "DESCRIPTION")
		for _, e := range experiments.Registry() {
			fmt.Printf("%-22s %-18s %s\n", e.Name, e.Paper, e.Description)
		}
		return 0
	}

	entries, err := experiments.Lookup(*figs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return 2
	}

	opt := experiments.Options{
		Seed:        *seed,
		FlowsPerRun: *flows,
		SweepPoints: *points,
		Workers:     *workers,
		Shards:      *shards,
		DumpSpecs:   *dumpSpecs,
	}
	if !*quiet {
		opt.Log = os.Stderr
	}

	for _, e := range entries {
		start := time.Now()
		fmt.Printf("#### %s (%s): %s\n", e.Name, e.Paper, e.Description)
		figs, err := e.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.Name, err)
			return 1
		}
		for _, f := range figs {
			switch *format {
			case "csv":
				fmt.Print(f.CSV())
			default:
				fmt.Println(f.Format())
			}
		}
		if *timing {
			fmt.Printf("(%s took %v)\n\n", e.Name, time.Since(start).Round(time.Millisecond))
		}
	}
	return 0
}
