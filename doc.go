// Package tlb is a from-scratch Go reproduction of "TLB: Traffic-aware
// Load Balancing with Adaptive Granularity in Data Center Networks"
// (Hu et al., ICPP 2019), including the packet-level network simulator
// it is evaluated on.
//
// The implementation lives under internal/:
//
//   - internal/eventsim — discrete-event engine and deterministic RNG
//   - internal/netem    — packets, ECN drop-tail queues, links, ports
//   - internal/topology — leaf-spine fabrics, symmetric and asymmetric
//   - internal/transport— DCTCP/TCP endpoints (the paper's traffic)
//   - internal/lb       — ECMP, RPS, Presto, LetFlow, DRILL baselines
//   - internal/core     — TLB itself (the paper's contribution)
//   - internal/model    — the paper's §4 queueing model (Eq. 1–9)
//   - internal/workload — web-search/data-mining CDFs, Poisson arrivals
//   - internal/sim      — the experiment runner and result reduction
//   - internal/experiments — one function per paper figure
//
// Entry points: cmd/tlbsim runs a single scenario; cmd/experiments
// regenerates every figure; examples/ hold runnable walkthroughs; the
// benchmarks in this directory regenerate each figure under the
// standard go test -bench machinery.
package tlb
