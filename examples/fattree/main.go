// Fattree: the same load-balancing schemes on a 3-tier k=4 fat-tree
// (Al-Fares et al.), where every packet crosses TWO balancing decisions
// — the edge switch picks the aggregation switch and the aggregation
// switch picks the core. The paper evaluates on a 2-tier leaf-spine;
// this example shows the library generalizes to the multi-rooted trees
// its introduction motivates.
//
// Run with:
//
//	go run ./examples/fattree
package main

import (
	"fmt"
	"log"

	"tlb/internal/core"
	"tlb/internal/eventsim"
	"tlb/internal/lb"
	"tlb/internal/netem"
	"tlb/internal/sim"
	"tlb/internal/topology"
	"tlb/internal/transport"
	"tlb/internal/units"
	"tlb/internal/workload"
)

func main() {
	ftCfg := topology.FatTreeConfig{
		K:          4, // 16 hosts, 4 pods, 4 cores, (k/2)^2 = 4 inter-pod paths
		HostLink:   netem.LinkConfig{Bandwidth: units.Gbps, Delay: 5 * units.Microsecond},
		FabricLink: netem.LinkConfig{Bandwidth: units.Gbps, Delay: 10 * units.Microsecond},
		Queue:      netem.QueueConfig{Capacity: 256, ECNThreshold: 65},
	}

	// Inter-pod traffic: elephants from pod 0 to pod 1, mice from every
	// pod to every other.
	flows := []workload.Flow{}
	for i := 0; i < 2; i++ {
		flows = append(flows, workload.Flow{Src: i, Dst: 4 + i, Size: 5 * units.MB, Start: 0})
	}
	rng := eventsim.NewRNG(5)
	for i := 0; i < 48; i++ {
		src := rng.Intn(16)
		dst := rng.Intn(16)
		for dst/4 == src/4 { // force inter-pod
			dst = rng.Intn(16)
		}
		flows = append(flows, workload.Flow{
			Src: src, Dst: dst,
			Size:     units.Bytes(10000 + rng.Intn(90000)),
			Start:    units.Time(i) * 100 * units.Microsecond,
			Deadline: units.Time(i)*100*units.Microsecond + 25*units.Millisecond,
		})
	}

	tlbCfg := core.DefaultConfig()
	tlbCfg.RTT = 140 * units.Microsecond // 3-tier round trip
	tlbCfg.MaxQTh = ftCfg.Queue.Capacity

	schemes := []struct {
		name    string
		factory lb.Factory
	}{
		{"ecmp", lb.ECMP()},
		{"letflow", lb.LetFlow(150 * units.Microsecond)},
		{"drill", lb.DRILL(2, 1)},
		{"tlb", core.Factory(tlbCfg)},
	}

	fmt.Printf("%-8s %12s %12s %14s\n", "scheme", "short AFCT", "short p99", "long goodput")
	for _, s := range schemes {
		res, err := sim.Run(sim.Scenario{
			Name:       "fattree-" + s.name,
			Transport:  transport.DefaultConfig(),
			Balancer:   s.factory,
			SchemeName: s.name,
			Seed:       9,
			Flows:      flows,
			BuildNetwork: func(sm *eventsim.Sim, f lb.Factory, r *eventsim.RNG, deliver topology.DeliverFunc) (topology.Network, error) {
				return topology.NewFatTree(sm, ftCfg, f, r, deliver)
			},
			StopWhenDone: true,
			MaxTime:      30 * units.Second,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %12v %12v %11.3f Gbps\n",
			s.name,
			res.AFCT(sim.ShortFlows),
			res.FCTPercentile(sim.ShortFlows, 99),
			float64(res.Goodput(sim.LongFlows))/1e9)
	}
}
