// Asymmetric: the paper's §7 asymmetry study (Fig. 16/17 shape) on a
// slow testbed-style fabric. Two of the ten leaf-to-spine paths are
// degraded — extra delay in one run, reduced bandwidth in another —
// and the example shows how each scheme copes. Congestion-oblivious
// schemes (RPS, Presto) keep spraying onto the bad paths; TLB and
// LetFlow route around them.
//
// Run with:
//
//	go run ./examples/asymmetric
package main

import (
	"fmt"
	"log"

	"tlb/internal/core"
	"tlb/internal/eventsim"
	"tlb/internal/lb"
	"tlb/internal/netem"
	"tlb/internal/sim"
	"tlb/internal/topology"
	"tlb/internal/transport"
	"tlb/internal/units"
	"tlb/internal/workload"
)

func baseTopo() topology.Config {
	return topology.Config{
		Leaves:       2,
		Spines:       10,
		HostsPerLeaf: 10,
		HostLink:     netem.LinkConfig{Bandwidth: 20 * units.Mbps, Delay: units.Millisecond},
		FabricLink:   netem.LinkConfig{Bandwidth: 20 * units.Mbps, Delay: units.Millisecond},
		Queue:        netem.QueueConfig{Capacity: 256, ECNThreshold: 20},
	}
}

func main() {
	variants := []struct {
		name string
		mut  func(*topology.Config)
	}{
		{"symmetric", nil},
		{"2 links +4ms delay", func(t *topology.Config) {
			slow := t.FabricLink
			slow.Delay += 4 * units.Millisecond
			t.Overrides = []topology.LinkOverride{
				{Leaf: 0, Spine: 2, Link: slow},
				{Leaf: 0, Spine: 7, Link: slow},
			}
		}},
		{"2 links at 5Mbps", func(t *topology.Config) {
			slow := t.FabricLink
			slow.Bandwidth = 5 * units.Mbps
			t.Overrides = []topology.LinkOverride{
				{Leaf: 0, Spine: 2, Link: slow},
				{Leaf: 0, Spine: 7, Link: slow},
			}
		}},
	}

	for _, v := range variants {
		topo := baseTopo()
		if v.mut != nil {
			v.mut(&topo)
		}
		fmt.Printf("--- %s ---\n", v.name)
		runAll(topo)
		fmt.Println()
	}
}

func runAll(topo topology.Config) {
	// Slow fabric: scale transport and TLB timers accordingly (the
	// paper uses a 15 ms update interval and D = 3 s here).
	tcfg := transport.DefaultConfig()
	tcfg.MinRTO = 50 * units.Millisecond
	tcfg.InitialRTO = 50 * units.Millisecond

	tlbCfg := core.DefaultConfig()
	tlbCfg.LinkBandwidth = topo.FabricLink.Bandwidth
	tlbCfg.RTT = topo.BaseRTT()
	tlbCfg.Interval = 15 * units.Millisecond
	tlbCfg.Deadline = 3 * units.Second
	tlbCfg.MaxQTh = topo.Queue.Capacity
	tlbCfg.MeanShortSize = 55 * units.KB

	mix := workload.StaticMix{
		ShortFlows:    100,
		LongFlows:     4,
		ShortSizes:    workload.Uniform{MinSize: 10 * units.KB, MaxSize: 100 * units.KB},
		LongSizes:     workload.Fixed{Size: 5 * units.MB},
		Senders:       []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
		Receivers:     []int{10, 11, 12, 13, 14, 15, 16, 17, 18, 19},
		ArrivalJitter: 500 * units.Millisecond,
		Deadlines: workload.DeadlineDist{
			Min: 2 * units.Second, Max: 6 * units.Second,
			OnlyBelow: 100 * units.KB,
		},
	}
	flows, err := mix.Generate(eventsim.NewRNG(3), 0)
	if err != nil {
		log.Fatal(err)
	}

	schemes := []struct {
		name    string
		factory lb.Factory
	}{
		{"ecmp", lb.ECMP()},
		{"rps", lb.RPS()},
		{"presto", lb.Presto(0)},
		{"letflow", lb.LetFlow(15 * units.Millisecond)},
		{"tlb", core.Factory(tlbCfg)},
	}
	fmt.Printf("%-8s %12s %12s %14s %8s\n", "scheme", "short AFCT", "short p99", "long goodput", "rtx")
	for _, s := range schemes {
		res, err := sim.Run(sim.Scenario{
			Name:         "asym-" + s.name,
			Topology:     topo,
			Transport:    tcfg,
			Balancer:     s.factory,
			SchemeName:   s.name,
			Seed:         5,
			Flows:        flows,
			StopWhenDone: true,
			MaxTime:      300 * units.Second,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %12v %12v %9.2f Mbps %8d\n",
			s.name,
			res.AFCT(sim.ShortFlows),
			res.FCTPercentile(sim.ShortFlows, 99),
			float64(res.Goodput(sim.LongFlows))/1e6,
			res.TotalRetransmits(sim.AllFlows))
	}
}
