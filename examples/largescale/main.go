// Largescale: streaming statistics at scale. With outputs.streamStats
// set, the workload is generated lazily (no up-front []Flow) and every
// completed flow folds into fixed-size per-class aggregates instead of
// being retained, so memory is O(concurrent flows), not O(total
// flows) — Result.Flows stays empty and every accessor answers from
// the aggregates (percentiles via a DDSketch-style quantile sketch
// with a ±1% relative-error bound).
//
// This demo runs a reduced 20k-flow inter-pod workload on a k=8
// fat-tree. The adjacent spec.json is the full-scale artifact — the
// same scenario at k=16 with one million flows:
//
//	go run ./examples/largescale
//	go run ./cmd/tlbsim -spec examples/largescale/spec.json
package main

import (
	"fmt"
	"log"

	"tlb/internal/sim"
	"tlb/internal/spec"

	// The tlb scheme registers itself with the lb registry.
	_ "tlb/internal/core"
)

func main() {
	sp := &spec.Spec{
		Version: spec.Version,
		Name:    "largescale-demo",
		Seed:    42,
		Scheme:  spec.Scheme{Name: "ecmp"},
		Topology: spec.Topology{
			Kind:       "fattree",
			K:          8, // 128 hosts in 8 pods
			HostLink:   spec.Link{Bandwidth: "1Gbps", Delay: "5us"},
			FabricLink: spec.Link{Bandwidth: "1Gbps", Delay: "10us"},
			Queue:      spec.Queue{Capacity: 256, ECNThreshold: 65},
		},
		Workload: spec.Workload{
			Kind: "interpod",
			InterPod: &spec.InterPod{
				Flows:             20000,
				Sizes:             spec.SizeDist{Kind: "uniform", Min: "2KB", Max: "32KB"},
				MaxGap:            "4us", // ~0.5 load against the hosts' 128 Gbps
				DeadlineBase:      "5ms",
				DeadlineJitter:    "20ms",
				DeadlineOnlyBelow: "100KB",
			},
		},
		Outputs: spec.Outputs{StreamStats: true},
		Run:     spec.Run{MaxTime: "60s", StopWhenDone: true},
	}

	sc, err := sp.Compile()
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(sc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("flows           %d (%d completed), records retained: %d\n",
		res.Count(sim.AllFlows), res.CompletedCount(sim.AllFlows), len(res.Flows))
	fmt.Printf("sim time        %v\n", res.EndTime)
	fmt.Printf("AFCT            %v\n", res.AFCT(sim.ShortFlows))
	fmt.Printf("p99 FCT         %v (sketch estimate, ±1%%)\n", res.FCTPercentile(sim.ShortFlows, 99))
	fmt.Printf("deadline misses %.2f%%\n", res.DeadlineMissRatio(sim.ShortFlows)*100)
	fmt.Printf("retransmits     %d (timeouts %d)\n",
		res.TotalRetransmits(sim.AllFlows), res.TotalTimeouts(sim.AllFlows))
}
