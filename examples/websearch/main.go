// Websearch: a scaled-down version of the paper's §6.2 large-scale
// evaluation. Poisson flow arrivals sized from the DCTCP web-search
// distribution hit a 4-leaf/8-spine fabric at increasing load, and the
// example prints the short-flow AFCT and long-flow goodput of every
// scheme at every load — the shape of the paper's Fig. 10.
//
// Run with:
//
//	go run ./examples/websearch
package main

import (
	"fmt"
	"log"

	"tlb/internal/core"
	"tlb/internal/eventsim"
	"tlb/internal/lb"
	"tlb/internal/netem"
	"tlb/internal/sim"
	"tlb/internal/topology"
	"tlb/internal/transport"
	"tlb/internal/units"
	"tlb/internal/workload"
)

func main() {
	topo := topology.Config{
		Leaves:       4,
		Spines:       8,
		HostsPerLeaf: 16,
		HostLink:     netem.LinkConfig{Bandwidth: units.Gbps, Delay: 5 * units.Microsecond},
		FabricLink:   netem.LinkConfig{Bandwidth: units.Gbps, Delay: 10 * units.Microsecond},
		Queue:        netem.QueueConfig{Capacity: 256, ECNThreshold: 65},
	}
	sizes := workload.Truncated{Dist: workload.WebSearch(), Max: 20 * units.MB}

	tlbCfg := core.DefaultConfig()
	tlbCfg.LinkBandwidth = topo.FabricLink.Bandwidth
	tlbCfg.RTT = topo.BaseRTT()
	tlbCfg.MaxQTh = topo.Queue.Capacity
	tlbCfg.MeanShortSize = 30 * units.KB

	schemes := []struct {
		name    string
		factory lb.Factory
	}{
		{"ecmp", lb.ECMP()},
		{"rps", lb.RPS()},
		{"presto", lb.Presto(0)},
		{"letflow", lb.LetFlow(150 * units.Microsecond)},
		{"tlb", core.Factory(tlbCfg)},
	}

	const flowCount = 300
	fmt.Printf("%-8s", "load")
	for _, s := range schemes {
		fmt.Printf("  %14s", s.name)
	}
	fmt.Println("      (short AFCT ms | long goodput Gbps)")

	for _, load := range []float64{0.3, 0.5, 0.8} {
		// Load is relative to the aggregate leaf-uplink capacity;
		// every flow crosses the fabric.
		fabricCap := float64(topo.Leaves) * float64(topo.Spines) * topo.FabricLink.Bandwidth.BytesPerSecond()
		pc := workload.PoissonConfig{
			Hosts:        topo.Hosts(),
			Sizes:        sizes,
			RateOverride: load * fabricCap / sizes.Mean(),
			Deadlines: workload.DeadlineDist{
				Min: 5 * units.Millisecond, Max: 25 * units.Millisecond,
				OnlyBelow: 100 * units.KB,
			},
			CrossLeafOnly: true,
			LeafOf:        func(h int) int { return h / topo.HostsPerLeaf },
		}
		flows, err := pc.Generate(eventsim.NewRNG(uint64(load*100)), flowCount, 0)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%-8.1f", load)
		for _, s := range schemes {
			res, err := sim.Run(sim.Scenario{
				Name:         fmt.Sprintf("websearch-%s-%.1f", s.name, load),
				Topology:     topo,
				Transport:    transport.DefaultConfig(),
				Balancer:     s.factory,
				SchemeName:   s.name,
				Seed:         9,
				Flows:        flows,
				StopWhenDone: true,
				MaxTime:      60 * units.Second,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %6.2f | %5.2f", res.AFCT(sim.ShortFlows).Millis(),
				float64(res.Goodput(sim.LongFlows))/1e9)
		}
		fmt.Println()
	}
}
