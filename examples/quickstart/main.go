// Quickstart: build a small leaf-spine fabric, run the same mixed
// workload under ECMP and under TLB, and compare what the paper cares
// about — short-flow completion times and long-flow throughput.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tlb/internal/core"
	"tlb/internal/eventsim"
	"tlb/internal/lb"
	"tlb/internal/netem"
	"tlb/internal/sim"
	"tlb/internal/topology"
	"tlb/internal/transport"
	"tlb/internal/units"
	"tlb/internal/workload"
)

func main() {
	// A 2-leaf, 8-spine fabric: 8 equal-cost paths between any pair of
	// hosts on different leaves, 1 Gbps everywhere.
	topo := topology.Config{
		Leaves:       2,
		Spines:       8,
		HostsPerLeaf: 8,
		HostLink:     netem.LinkConfig{Bandwidth: units.Gbps, Delay: 5 * units.Microsecond},
		FabricLink:   netem.LinkConfig{Bandwidth: units.Gbps, Delay: 10 * units.Microsecond},
		Queue:        netem.QueueConfig{Capacity: 256, ECNThreshold: 65},
	}

	// The paper's §2 scenario: a few elephants hog paths while a burst
	// of latency-sensitive mice tries to get through.
	mix := workload.StaticMix{
		ShortFlows: 60,
		LongFlows:  3,
		ShortSizes: workload.Uniform{MinSize: 10 * units.KB, MaxSize: 100 * units.KB},
		LongSizes:  workload.Fixed{Size: 10 * units.MB},
		Senders:    []int{0, 1, 2, 3, 4, 5, 6, 7},
		Receivers:  []int{8, 9, 10, 11, 12, 13, 14, 15},
		// Mice burst into established elephants over 5 ms.
		ArrivalJitter: 5 * units.Millisecond,
		Deadlines: workload.DeadlineDist{
			Min: 5 * units.Millisecond, Max: 25 * units.Millisecond,
			OnlyBelow: 100 * units.KB,
		},
	}
	flows, err := mix.Generate(eventsim.NewRNG(7), 0)
	if err != nil {
		log.Fatal(err)
	}

	// TLB needs to know the fabric it balances for (link rate, RTT,
	// buffer depth); everything else is the paper's defaults.
	tlbCfg := core.DefaultConfig()
	tlbCfg.LinkBandwidth = topo.FabricLink.Bandwidth
	tlbCfg.RTT = topo.BaseRTT()
	tlbCfg.MaxQTh = topo.Queue.Capacity

	schemes := []struct {
		name    string
		factory lb.Factory
	}{
		{"ecmp", lb.ECMP()},
		{"tlb", core.Factory(tlbCfg)},
	}

	fmt.Printf("%-6s %12s %12s %10s %14s\n",
		"scheme", "short AFCT", "short p99", "miss %", "long goodput")
	for _, s := range schemes {
		res, err := sim.Run(sim.Scenario{
			Name:         "quickstart-" + s.name,
			Topology:     topo,
			Transport:    transport.DefaultConfig(),
			Balancer:     s.factory,
			SchemeName:   s.name,
			Seed:         1,
			Flows:        flows,
			StopWhenDone: true,
			MaxTime:      10 * units.Second,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s %12v %12v %9.1f%% %11.3f Gbps\n",
			s.name,
			res.AFCT(sim.ShortFlows),
			res.FCTPercentile(sim.ShortFlows, 99),
			res.DeadlineMissRatio(sim.ShortFlows)*100,
			float64(res.Goodput(sim.LongFlows))/1e9)
	}
}
