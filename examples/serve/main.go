// Serve: drive the run server end to end, in process. The program
// starts internal/serve on a loopback listener, submits a campaign of
// six specs (ECMP, LetFlow and TLB, each healthy and with a spine
// link failed at 200us), follows the live SSE event stream the way a
// dashboard would, and saves the self-contained HTML report artifact.
//
// Run with:
//
//	go run ./examples/serve
//
// The same flow works against a standalone server started with
// `tlbsim -serve 127.0.0.1:8080` — only the base URL changes.
package main

import (
	"bufio"
	"bytes"
	_ "embed"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"

	_ "tlb/internal/core" // register the tlb scheme
	"tlb/internal/serve"
)

//go:embed campaign.json
var campaign []byte

func main() {
	out := flag.String("o", filepath.Join(os.TempDir(), "tlb-campaign.html"),
		"where to write the HTML report")
	flag.Parse()

	srv := serve.New(serve.Options{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Submit the whole campaign in one POST; the response names the
	// run and the endpoints to follow it on.
	resp, err := http.Post(ts.URL+"/runs", "application/json", bytes.NewReader(campaign))
	if err != nil {
		log.Fatal(err)
	}
	var sub struct {
		ID        string `json:"id"`
		Scenarios int    `json:"scenarios"`
		Events    string `json:"events"`
		Report    string `json:"report"`
	}
	if err := decode(resp, http.StatusAccepted, &sub); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run %q accepted: %d scenarios\n", sub.ID, sub.Scenarios)

	// Follow the SSE stream until the terminal "end" frame. Snapshot
	// frames carry live in-sim-time aggregates; done frames carry the
	// final per-scenario numbers.
	if err := follow(ts.URL + sub.Events); err != nil {
		log.Fatal(err)
	}

	// The report is available once the run is done.
	resp, err = http.Get(ts.URL + sub.Report)
	if err != nil {
		log.Fatal(err)
	}
	doc, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("report: %s: %s", resp.Status, doc)
	}
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("report: %d bytes -> %s\n", len(doc), *out)
}

// follow prints one line per done frame (and a summary count of
// snapshots) from the run's SSE stream, returning once the stream's
// end frame arrives.
func follow(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("events: %s", resp.Status)
	}

	var (
		event     string
		snapshots int
	)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "snapshot":
				snapshots++
			case "done":
				var ev struct {
					Scenario  string  `json:"scenario"`
					Completed int     `json:"completed"`
					Total     int     `json:"total"`
					SimTimeMs float64 `json:"simTimeMs"`
					FlowsDone int     `json:"flowsDone"`
					Error     string  `json:"error"`
				}
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					return err
				}
				if ev.Error != "" {
					fmt.Printf("[%d/%d] %-16s FAILED: %s\n",
						ev.Completed, ev.Total, ev.Scenario, ev.Error)
					continue
				}
				fmt.Printf("[%d/%d] %-16s %d flows in %.3fms of sim time\n",
					ev.Completed, ev.Total, ev.Scenario, ev.FlowsDone, ev.SimTimeMs)
			case "end":
				var end struct {
					Error string `json:"error"`
				}
				if err := json.Unmarshal([]byte(data), &end); err != nil {
					return err
				}
				fmt.Printf("campaign finished: %d live snapshots streamed\n", snapshots)
				if end.Error != "" {
					return fmt.Errorf("campaign failed: %s", end.Error)
				}
				return nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return fmt.Errorf("event stream ended without an end frame")
}

// decode checks the status code and unmarshals the JSON body.
func decode(resp *http.Response, want int, v any) error {
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != want {
		return fmt.Errorf("%s: %s", resp.Status, body)
	}
	return json.Unmarshal(body, v)
}
