// Deadline: the paper's §6.3 deadline-agnostic study (Fig. 12 shape).
// The switch does not know each flow's real deadline (drawn uniformly
// from [5ms, 25ms]); instead TLB is configured with one fixed D — the
// 5th, 25th, 50th or 75th percentile of that distribution — and the
// example shows why the paper picks the 25th percentile: tight enough
// to protect the mice, loose enough to leave capacity for elephants.
//
// Run with:
//
//	go run ./examples/deadline
package main

import (
	"fmt"
	"log"

	"tlb/internal/core"
	"tlb/internal/eventsim"
	"tlb/internal/netem"
	"tlb/internal/sim"
	"tlb/internal/topology"
	"tlb/internal/transport"
	"tlb/internal/units"
	"tlb/internal/workload"
)

func main() {
	topo := topology.Config{
		Leaves:       4,
		Spines:       8,
		HostsPerLeaf: 16,
		HostLink:     netem.LinkConfig{Bandwidth: units.Gbps, Delay: 5 * units.Microsecond},
		FabricLink:   netem.LinkConfig{Bandwidth: units.Gbps, Delay: 10 * units.Microsecond},
		Queue:        netem.QueueConfig{Capacity: 256, ECNThreshold: 65},
	}
	sizes := workload.Truncated{Dist: workload.WebSearch(), Max: 20 * units.MB}

	const load = 0.7
	fabricCap := float64(topo.Leaves) * float64(topo.Spines) * topo.FabricLink.Bandwidth.BytesPerSecond()
	pc := workload.PoissonConfig{
		Hosts:        topo.Hosts(),
		Sizes:        sizes,
		RateOverride: load * fabricCap / sizes.Mean(),
		Deadlines: workload.DeadlineDist{
			Min: 5 * units.Millisecond, Max: 25 * units.Millisecond,
			OnlyBelow: 100 * units.KB,
		},
		CrossLeafOnly: true,
		LeafOf:        func(h int) int { return h / topo.HostsPerLeaf },
	}
	flows, err := pc.Generate(eventsim.NewRNG(11), 300, 0)
	if err != nil {
		log.Fatal(err)
	}

	percentiles := []struct {
		name string
		d    units.Time
	}{
		{"TLB-5th", 5 * units.Millisecond},
		{"TLB-25th", 10 * units.Millisecond},
		{"TLB-50th", 15 * units.Millisecond},
		{"TLB-75th", 20 * units.Millisecond},
	}

	fmt.Printf("%-9s %12s %12s %10s %14s\n",
		"variant", "short AFCT", "short p99", "miss %", "long goodput")
	for _, p := range percentiles {
		cfg := core.DefaultConfig()
		cfg.LinkBandwidth = topo.FabricLink.Bandwidth
		cfg.RTT = topo.BaseRTT()
		cfg.MaxQTh = topo.Queue.Capacity
		cfg.MeanShortSize = 30 * units.KB
		cfg.Deadline = p.d

		res, err := sim.Run(sim.Scenario{
			Name:         "deadline-" + p.name,
			Topology:     topo,
			Transport:    transport.DefaultConfig(),
			Balancer:     core.Factory(cfg),
			SchemeName:   p.name,
			Seed:         2,
			Flows:        flows,
			StopWhenDone: true,
			MaxTime:      60 * units.Second,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %12v %12v %9.1f%% %11.3f Gbps\n",
			p.name,
			res.AFCT(sim.ShortFlows),
			res.FCTPercentile(sim.ShortFlows, 99),
			res.DeadlineMissRatio(sim.ShortFlows)*100,
			float64(res.Goodput(sim.LongFlows))/1e9)
	}
}
