module tlb

go 1.22
