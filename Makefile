GO ?= go

.PHONY: build test vet lint lint-json race bench bench-all alloc-gates specs examples largescale-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs simlint, the repo's custom static analyzer enforcing the
# determinism, unit-safety, ownership and shard-readiness contract (see
# DESIGN.md, "Determinism contract" / "Static enforcement"):
# nowallclock, noglobalrand, maporder, floateq, unitliteral, packetown,
# handlelife, dimcheck, sharedstate — plus stale-suppression detection.
lint:
	$(GO) run ./cmd/simlint ./...

# lint-json emits the same findings machine-readably: a JSON array on
# stdout and a SARIF 2.1.0 log in simlint.sarif (stable SIMxxx ids),
# for editors and CI annotation.
lint-json:
	$(GO) run ./cmd/simlint -json -sarif simlint.sarif ./...

# The race detector runs over every package: the shared sweep runner
# (internal/sim) and the batched figure runners (internal/experiments)
# contain the real concurrency, but transport/netem/lb must also stay
# clean when exercised from -race test binaries.
race:
	$(GO) test -race ./...

# bench produces the tracked baseline (BENCH_4.json, "after" section):
# the engine micro-benchmarks at a statistically useful -benchtime plus
# the three figure-scale benchmarks at one iteration each. The raw
# lines inside the JSON stay benchstat-compatible. The "before" section
# is historical (captured at the pre-freelist commit) and is preserved
# by the merge.
bench:
	( $(GO) test -bench 'BenchmarkEventQueue|BenchmarkPortTransit' -benchtime 2s -run '^$$' . \
	  && $(GO) test -bench 'BenchmarkFig8ShortFlows|BenchmarkFig10WebSearch|BenchmarkFig13VaryShort' -benchtime 1x -timeout 30m -run '^$$' . ) \
	| tee /dev/stderr | $(GO) run ./cmd/benchjson -out BENCH_4.json -section after
	$(GO) test -bench 'BenchmarkLargeScaleStream' -benchtime 1x -run '^$$' . \
	| tee /dev/stderr | $(GO) run ./cmd/benchjson -out BENCH_6.json -section after -require 'flows/sec,peakRSS-MB'
	$(GO) test -bench 'BenchmarkSimlint' -benchtime 1x -run '^$$' ./internal/lint \
	| tee /dev/stderr | $(GO) run ./cmd/benchjson -out BENCH_7.json -section after

# bench-all runs every benchmark once, without touching BENCH_4.json —
# a quick "do they all still run" check.
bench-all:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# alloc-gates runs just the zero-allocation contract tests (they are
# also part of `make test`, this target is the fast inner loop).
alloc-gates:
	$(GO) test -run 'TestAllocGate' -count 1 -v .

# specs validates every checked-in scenario spec through the loader
# and registry (the quickstart example and the golden experiment
# specs), then runs the quickstart spec end to end.
specs:
	$(GO) run ./cmd/tlbsim -check-spec -spec 'examples/*/spec.json,internal/experiments/testdata/specs/*.json'
	$(GO) run ./cmd/tlbsim -spec examples/quickstart/spec.json >/dev/null

# examples compiles and runs every examples/ program as smoke; each
# must exit 0.
examples:
	@set -e; for d in examples/*/; do \
		echo "== $$d"; \
		$(GO) run ./$$d >/dev/null; \
	done

# smoke runs one small end-to-end figure — the fault-injection
# experiment, which crosses every layer (faults -> netem -> lb/core ->
# sim -> experiments) — and discards the output; it only has to exit 0.
smoke:
	$(GO) run ./cmd/experiments -fig figF1 -flows 60 -workers 2 -q >/dev/null

# largescale-smoke runs the streamed k=16 fat-tree scenario (figLS) at
# a reduced flow count (2 x 1250 = 2500 flows): the lazy workload
# source, StreamStats fold and streamed Result accessors all have to
# work end to end for it to exit 0. The full-scale (1M flow) numbers
# live in EXPERIMENTS.md "Large scale".
largescale-smoke:
	$(GO) run ./cmd/experiments -fig figLS -flows 2 -q >/dev/null

# ci is the gate: static checks (vet + simlint), the full test suite,
# the zero-allocation gates, the race detector over all packages, and
# the end-to-end smoke runs.
ci: build vet lint test alloc-gates race specs examples smoke largescale-smoke
