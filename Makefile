GO ?= go

.PHONY: build test vet lint race bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs simlint, the repo's custom static analyzer enforcing the
# determinism and unit-safety contract (see DESIGN.md, "Determinism
# contract"): nowallclock, noglobalrand, maporder, floateq, unitliteral.
lint:
	$(GO) run ./cmd/simlint ./...

# The race detector runs over every package: the shared sweep runner
# (internal/sim) and the batched figure runners (internal/experiments)
# contain the real concurrency, but transport/netem/lb must also stay
# clean when exercised from -race test binaries.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# ci is the gate: static checks (vet + simlint), the full test suite,
# and the race detector over all packages.
ci: build vet lint test race
