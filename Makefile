GO ?= go

.PHONY: build test vet lint race bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs simlint, the repo's custom static analyzer enforcing the
# determinism and unit-safety contract (see DESIGN.md, "Determinism
# contract"): nowallclock, noglobalrand, maporder, floateq, unitliteral.
lint:
	$(GO) run ./cmd/simlint ./...

# The race detector runs over every package: the shared sweep runner
# (internal/sim) and the batched figure runners (internal/experiments)
# contain the real concurrency, but transport/netem/lb must also stay
# clean when exercised from -race test binaries.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# smoke runs one small end-to-end figure — the fault-injection
# experiment, which crosses every layer (faults -> netem -> lb/core ->
# sim -> experiments) — and discards the output; it only has to exit 0.
smoke:
	$(GO) run ./cmd/experiments -fig figF1 -flows 60 -workers 2 -q >/dev/null

# ci is the gate: static checks (vet + simlint), the full test suite,
# the race detector over all packages, and the end-to-end smoke run.
ci: build vet lint test race smoke
