GO ?= go

.PHONY: build test vet race bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race target exercises the two packages that contain real
# concurrency: the shared sweep runner (internal/sim) and the batched
# figure runners that feed it (internal/experiments).
race:
	$(GO) test -race ./internal/sim ./internal/experiments

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# ci is the gate: static checks, the full test suite, and the race
# detector over the concurrent packages.
ci: build vet test race
