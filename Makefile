GO ?= go

.PHONY: build test vet lint lint-json race bench bench-all bench-gate bench-gate-self alloc-gates specs examples smoke largescale-smoke shard-smoke serve-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs simlint, the repo's custom static analyzer enforcing the
# determinism, unit-safety, ownership and shard-readiness contract (see
# DESIGN.md, "Determinism contract" / "Static enforcement"):
# nowallclock, noglobalrand, maporder, floateq, unitliteral, packetown,
# handlelife, dimcheck, sharedstate — plus stale-suppression detection.
lint:
	$(GO) run ./cmd/simlint ./...

# lint-json emits the same findings machine-readably: a JSON array on
# stdout and a SARIF 2.1.0 log in simlint.sarif (stable SIMxxx ids),
# for editors and CI annotation.
lint-json:
	$(GO) run ./cmd/simlint -json -sarif simlint.sarif ./...

# The race detector runs over every package: the shared sweep runner
# (internal/sim) and the batched figure runners (internal/experiments)
# contain the real concurrency, but transport/netem/lb must also stay
# clean when exercised from -race test binaries.
race:
	$(GO) test -race ./...

# bench produces THIS PR's tracked baseline, BENCH_9.json: the engine
# micro-benchmarks at a statistically useful -benchtime plus the
# figure-scale, large-scale-streaming and simlint benchmarks at one
# iteration each, all merged into one "after" section. The raw lines
# inside the JSON stay benchstat-compatible. Earlier baselines
# (BENCH_4/6/7/8/9.json) are append-only history — the perf trajectory
# the ROADMAP tracks — and must never be rewritten by later runs; a
# future PR that moves tracked performance writes a new BENCH_<pr>.json.
bench:
	( $(GO) test -bench 'BenchmarkEventQueue|BenchmarkPortTransit' -benchtime 2s -run '^$$' . \
	  && $(GO) test -bench 'BenchmarkFig8ShortFlows|BenchmarkFig10WebSearch|BenchmarkFig13VaryShort|BenchmarkLargeScaleStream' -benchtime 1x -timeout 30m -run '^$$' . \
	  && $(GO) test -bench 'BenchmarkSimlint' -benchtime 1x -run '^$$' ./internal/lint ) \
	| tee /dev/stderr | $(GO) run ./cmd/benchjson -out BENCH_10.json -section after -require 'events/sec,flows/sec,peakRSS-MB'

# bench-all runs every benchmark in every package once, without
# touching any baseline — a quick "do they all still run" check.
# (./... matters: the root package alone would silently skip
# BenchmarkSimlint in internal/lint and any future non-root benchmark.)
bench-all:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# bench-gate fails loudly when the engine's event throughput regresses
# more than 10% between the two newest tracked baselines, selected
# automatically from the append-only BENCH_<pr>.json history (numeric
# PR order) so the gate follows the trajectory without a Makefile edit
# each PR. Run `make bench` first so the newest file reflects this
# machine. Opt-in in ci via BENCH_GATE=1 because CI hardware varies
# too much for an unconditional wall-clock gate.
bench-gate:
	@set -e; pair=$$(ls BENCH_*.json | sort -t_ -k2 -n | tail -2); \
	base=$$(echo $$pair | cut -d' ' -f1); head=$$(echo $$pair | cut -d' ' -f2); \
	if [ "$$base" = "$$head" ]; then echo "bench-gate: need two BENCH_*.json baselines"; exit 1; fi; \
	echo "bench-gate: $$head vs $$base"; \
	$(GO) run ./cmd/benchjson -compare $$base -metric events/sec -max-regress 10 $$head

# bench-gate-self gates the newest baseline's own before->after pair:
# the like-for-like check when cross-file comparison is confounded by
# host drift (shared hardware runs at different speeds in different
# sessions — absolute events/sec across files then measures the host,
# not the code). Requires the newest BENCH_<pr>.json to carry a
# "before" section captured on the same box as its "after" (PR 9's
# does; see EXPERIMENTS.md "Engine speed trajectory").
bench-gate-self:
	@set -e; head=$$(ls BENCH_*.json | sort -t_ -k2 -n | tail -1); \
	echo "bench-gate-self: $$head after vs before"; \
	$(GO) run ./cmd/benchjson -compare $$head -base-section before -metric events/sec -max-regress 10 $$head

# alloc-gates runs just the zero-allocation contract tests (they are
# also part of `make test`, this target is the fast inner loop).
alloc-gates:
	$(GO) test -run 'TestAllocGate' -count 1 -v .

# specs validates every checked-in scenario spec through the loader
# and registry (the quickstart example and the golden experiment
# specs), then runs the quickstart spec end to end.
specs:
	$(GO) run ./cmd/tlbsim -check-spec -spec 'examples/*/spec.json,internal/experiments/testdata/specs/*.json'
	$(GO) run ./cmd/tlbsim -spec examples/quickstart/spec.json >/dev/null

# examples compiles and runs every examples/ program as smoke; each
# must exit 0.
examples:
	@set -e; for d in examples/*/; do \
		echo "== $$d"; \
		$(GO) run ./$$d >/dev/null; \
	done

# serve-smoke exercises the run server end to end under the race
# detector: submit over HTTP, stream SSE snapshots, fetch the
# golden-pinned report, cancel a run mid-flight and verify the server
# releases its goroutines. The serve example doubles as a second
# end-to-end pass from a plain HTTP client's point of view.
serve-smoke:
	$(GO) test -race -count 1 -run 'TestServe' ./internal/serve
	$(GO) run ./examples/serve >/dev/null

# smoke runs one small end-to-end figure — the fault-injection
# experiment, which crosses every layer (faults -> netem -> lb/core ->
# sim -> experiments) — and discards the output; it only has to exit 0.
smoke:
	$(GO) run ./cmd/experiments -fig figF1 -flows 60 -workers 2 -q >/dev/null

# largescale-smoke runs the streamed k=16 fat-tree scenario (figLS) at
# a reduced flow count (2 x 1250 = 2500 flows): the lazy workload
# source, StreamStats fold and streamed Result accessors all have to
# work end to end for it to exit 0. The full-scale (1M flow) numbers
# live in EXPERIMENTS.md "Large scale".
largescale-smoke:
	$(GO) run ./cmd/experiments -fig figLS -flows 2 -q >/dev/null

# shard-smoke runs the fault-injection figure spatially sharded across
# 4 per-shard engines inside the 2-worker sweep pool, under the race
# detector: the epoch barriers, handoff exchange and per-shard pool
# ownership all have to be data-race-free for it to exit 0.
shard-smoke:
	$(GO) run -race ./cmd/experiments -fig figF1 -flows 60 -workers 2 -shards 4 -q >/dev/null

# ci is the gate: static checks (vet + simlint), the full test suite,
# the zero-allocation gates, the race detector over all packages, and
# the end-to-end smoke runs. Set BENCH_GATE=1 to also enforce the
# events/sec regression threshold against the tracked baselines
# (opt-in: CI hardware varies, so the wall-clock gate is only
# meaningful where the newest BENCH_<pr>.json was produced).
ci: build vet lint test alloc-gates race specs examples smoke largescale-smoke shard-smoke serve-smoke $(if $(BENCH_GATE),bench-gate)
