// Benchmarks: one per paper figure (reduced-scale, same code path as
// cmd/experiments) plus the per-scheme decision micro-benchmarks
// behind Fig. 15 and the ablation benches DESIGN.md calls out.
//
// The figure benches report, via b.ReportMetric, the headline quantity
// of the corresponding figure (e.g. TLB's short-flow AFCT improvement
// over ECMP at the highest load), so a -bench run doubles as a
// regression check on the reproduction's shape.
package tlb_test

import (
	"testing"

	"tlb/internal/core"
	"tlb/internal/eventsim"
	"tlb/internal/experiments"
	"tlb/internal/lb"
	"tlb/internal/netem"
	"tlb/internal/stats"
	"tlb/internal/units"
)

// quick returns the reduced-scale options the benches run at.
func quick() experiments.Options { return experiments.Quick() }

// lastRatio extracts series[name]'s last point Y over series[ref]'s
// last point Y — "how much better is ref than name at the highest x".
func lastRatio(figs []experiments.Figure, figID, name, ref string) float64 {
	for _, f := range figs {
		if f.ID != figID {
			continue
		}
		var a, b float64
		for _, s := range f.Series {
			if len(s.Points) == 0 {
				continue
			}
			y := s.Points[len(s.Points)-1].Y
			switch s.Name {
			case name:
				a = y
			case ref:
				b = y
			}
		}
		if b != 0 {
			return a / b
		}
	}
	return 0
}

func runFig(b *testing.B, run func(experiments.Options) ([]experiments.Figure, error)) []experiments.Figure {
	b.Helper()
	var figs []experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		figs, err = run(quick())
		if err != nil {
			b.Fatal(err)
		}
	}
	return figs
}

func BenchmarkFig3Granularity(b *testing.B) {
	figs := runFig(b, experiments.Fig3And4)
	// Fig 3b: packet-level switching must show the largest dup-ACK
	// ratio; report it.
	for _, f := range figs {
		if f.ID == "fig3b" {
			for _, bar := range f.Bars {
				if bar.Label == "packet" {
					b.ReportMetric(bar.Value, "dupAckRatio/packetLevel")
				}
			}
		}
	}
}

func BenchmarkFig4Granularity(b *testing.B) {
	figs := runFig(b, experiments.Fig3And4)
	for _, f := range figs {
		if f.ID == "fig4c" {
			for _, bar := range f.Bars {
				if bar.Label == "flow" {
					b.ReportMetric(bar.Value, "longTputFrac/flowLevel")
				}
			}
		}
	}
}

func BenchmarkFig7Model(b *testing.B) {
	figs := runFig(b, experiments.Fig7)
	// Report the mean |model - simulation| gap over fig7a, in packets.
	for _, f := range figs {
		if f.ID != "fig7a" || len(f.Series) != 2 {
			continue
		}
		var gap float64
		n := 0
		for i := range f.Series[0].Points {
			d := f.Series[0].Points[i].Y - f.Series[1].Points[i].Y
			if d < 0 {
				d = -d
			}
			gap += d
			n++
		}
		if n > 0 {
			b.ReportMetric(gap/float64(n), "modelSimGap/pkts")
		}
	}
}

func BenchmarkFig8ShortFlows(b *testing.B) {
	figs := runFig(b, experiments.Fig8And9)
	for _, f := range figs {
		if f.ID == "fig8-9-summary" {
			for _, bar := range f.Bars {
				if bar.Label == "tlb" {
					b.ReportMetric(bar.Value, "tlbLongGoodput/Gbps")
				}
			}
		}
	}
}

func BenchmarkFig9LongFlows(b *testing.B) {
	runFig(b, experiments.Fig8And9)
}

func BenchmarkFig10WebSearch(b *testing.B) {
	figs := runFig(b, experiments.Fig10)
	if r := lastRatio(figs, "fig10a", "ecmp", "tlb"); r > 0 {
		b.ReportMetric(r, "ecmpAFCT/tlbAFCT@maxLoad")
	}
	if r := lastRatio(figs, "fig10a", "letflow", "tlb"); r > 0 {
		b.ReportMetric(r, "letflowAFCT/tlbAFCT@maxLoad")
	}
}

func BenchmarkFig11DataMining(b *testing.B) {
	figs := runFig(b, experiments.Fig11)
	if r := lastRatio(figs, "fig11a", "ecmp", "tlb"); r > 0 {
		b.ReportMetric(r, "ecmpAFCT/tlbAFCT@maxLoad")
	}
}

func BenchmarkFig12DeadlineAgnostic(b *testing.B) {
	figs := runFig(b, experiments.Fig12)
	if r := lastRatio(figs, "fig12a", "tlb-75th", "tlb-25th"); r > 0 {
		b.ReportMetric(r, "afct75th/afct25th@maxLoad")
	}
}

func BenchmarkFig13VaryShort(b *testing.B) {
	figs := runFig(b, experiments.Fig13)
	if r := lastRatio(figs, "fig13a", "ecmp", "tlb"); r > 0 {
		b.ReportMetric(r, "ecmpAFCT/tlbAFCT@maxShorts")
	}
}

func BenchmarkFig14VaryLong(b *testing.B) {
	figs := runFig(b, experiments.Fig14)
	if r := lastRatio(figs, "fig14a", "ecmp", "tlb"); r > 0 {
		b.ReportMetric(r, "ecmpAFCT/tlbAFCT@maxLongs")
	}
}

func BenchmarkFig16AsymDelay(b *testing.B) {
	figs := runFig(b, experiments.Fig16)
	if r := lastRatio(figs, "fig16a", "rps", "tlb"); r > 0 {
		b.ReportMetric(r, "rpsAFCT/tlbAFCT@maxAsym")
	}
}

func BenchmarkFig17AsymBandwidth(b *testing.B) {
	figs := runFig(b, experiments.Fig17)
	if r := lastRatio(figs, "fig17a", "rps", "tlb"); r > 0 {
		b.ReportMetric(r, "rpsAFCT/tlbAFCT@maxAsym")
	}
}

// ---- Fig. 15: per-packet decision cost, proper testing.B style ----

// benchPorts builds the uplink set the decision benches run against.
func benchPorts(s *eventsim.Sim) []*netem.Port {
	ports := make([]*netem.Port, 10)
	for i := range ports {
		ports[i] = netem.NewPort(s,
			netem.LinkConfig{Bandwidth: units.Gbps, Delay: 10 * units.Microsecond},
			netem.QueueConfig{Capacity: 256},
			func(*netem.Packet) {}, "up")
	}
	return ports
}

func benchDecision(b *testing.B, factory lb.Factory) {
	s := eventsim.New()
	ports := benchPorts(s)
	bal := factory(s, eventsim.NewRNG(1), ports)
	const flows = 512
	pkts := make([]*netem.Packet, flows)
	for i := range pkts {
		pkts[i] = &netem.Packet{
			Flow:    netem.FlowID{Src: i % 97, Dst: 100 + i%89, Port: i},
			Kind:    netem.Data,
			Payload: 1460, Wire: 1500,
		}
	}
	for i := 0; i < flows; i++ { // warm per-flow state
		bal.Pick(pkts[i], ports)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bal.Pick(pkts[i%flows], ports)
	}
}

func BenchmarkFig15DecisionECMP(b *testing.B)    { benchDecision(b, lb.ECMP()) }
func BenchmarkFig15DecisionRPS(b *testing.B)     { benchDecision(b, lb.RPS()) }
func BenchmarkFig15DecisionPresto(b *testing.B)  { benchDecision(b, lb.Presto(0)) }
func BenchmarkFig15DecisionLetFlow(b *testing.B) { benchDecision(b, lb.LetFlow(0)) }
func BenchmarkFig15DecisionDRILL(b *testing.B)   { benchDecision(b, lb.DRILL(2, 1)) }

func BenchmarkFig15DecisionTLB(b *testing.B) {
	benchDecision(b, core.Factory(core.DefaultConfig()))
}

// ---- Ablations (DESIGN.md §5) ----

func BenchmarkAblationInterval(b *testing.B) {
	runFig(b, experiments.AblationInterval)
}

func BenchmarkAblationThreshold(b *testing.B) {
	runFig(b, experiments.AblationThreshold)
}

func BenchmarkAblationFixedGranularity(b *testing.B) {
	figs := runFig(b, experiments.AblationFixedGranularity)
	// Adaptive q_th should not lose to any fixed setting on AFCT.
	for _, f := range figs {
		if f.ID != "ablation-fixed-afct" {
			continue
		}
		var adaptive, bestFixed float64
		for _, bar := range f.Bars {
			if bar.Label == "adaptive" {
				adaptive = bar.Value
			} else if bestFixed == 0 || bar.Value < bestFixed {
				bestFixed = bar.Value
			}
		}
		if bestFixed > 0 {
			b.ReportMetric(adaptive/bestFixed, "adaptiveAFCT/bestFixedAFCT")
		}
	}
}

func BenchmarkAblationShortPolicy(b *testing.B) {
	runFig(b, experiments.AblationShortPolicy)
}

// ---- Simulator core micro-benches (engine cost, not a paper figure) ----

// BenchmarkEventQueue measures schedule+run through the calendar
// queue in 1024-deep batches (the tracked BENCH_4→BENCH_8 baseline —
// its shape must stay fixed for cross-PR comparison). Every scheduled
// event is also executed inside the timed region (the final drain
// included), so allocs/op is the true per-event cost — nothing leaks
// past the b.N loop — and Executed() equals b.N exactly, making the
// events/sec metric honest.
func BenchmarkEventQueue(b *testing.B) {
	s := eventsim.New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.At(units.Time(i), fn)
		if s.Pending() >= 1024 {
			for s.Step() {
			}
		}
	}
	for s.Step() {
	}
	b.StopTimer()
	if s.Executed() != uint64(b.N) {
		b.Fatalf("executed %d events, want %d", s.Executed(), b.N)
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(s.Executed())/secs, "events/sec")
	}
}

// BenchmarkEventQueueSameTick measures the batched same-timestamp
// dispatch path: 64-event bursts sharing one instant, drained through
// RunUntil's slot-batch loop — the shape a fan-in of port deliveries
// on one tick produces.
func BenchmarkEventQueueSameTick(b *testing.B) {
	s := eventsim.New()
	fn := func() {}
	const burst = 64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += burst {
		at := s.Now() + 1
		for j := 0; j < burst; j++ {
			s.At(at, fn)
		}
		s.RunUntil(at)
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(s.Executed())/secs, "events/sec")
	}
}

// BenchmarkEventQueueFarTimers measures the spill path: an At+Cancel
// cycle far beyond the wheel horizon, the steady-state cost of every
// transport RTO re-arm.
func BenchmarkEventQueueFarTimers(b *testing.B) {
	s := eventsim.New()
	fn := func() {}
	const far = 50 * units.Millisecond
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Cancel(s.At(s.Now()+far, fn))
	}
}

// BenchmarkPortTransit measures the full steady-state per-packet path:
// pool Get, Send (admission + delivery scheduling), serialization,
// delivery, pool release — the cycle every data segment and ACK of a
// figure run pays at every hop.
func BenchmarkPortTransit(b *testing.B) {
	s := eventsim.New()
	pool := netem.NewPacketPool()
	delivered := 0
	p := netem.NewPort(s,
		netem.LinkConfig{Bandwidth: units.Gbps, Delay: 10 * units.Microsecond},
		netem.QueueConfig{Capacity: 1 << 20},
		func(pkt *netem.Packet) { delivered++; pool.Put(pkt) }, "bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt := pool.Get()
		pkt.Flow = netem.FlowID{Src: 1, Dst: 2}
		pkt.Kind = netem.Data
		pkt.Payload = 1460
		pkt.Wire = 1500
		p.Send(pkt)
		if i%1024 == 1023 {
			s.Run()
		}
	}
	s.Run()
	b.StopTimer()
	if delivered != b.N {
		b.Fatalf("delivered %d packets, want %d", delivered, b.N)
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(s.Executed())/secs, "events/sec")
	}
	_ = stats.Point{}
}

func BenchmarkAblationSafeSwitch(b *testing.B) {
	runFig(b, experiments.AblationSafeSwitch)
}

func BenchmarkAblationDemandCap(b *testing.B) {
	runFig(b, experiments.AblationDemandCap)
}

func BenchmarkAblationTransport(b *testing.B) {
	runFig(b, experiments.AblationTransport)
}

func BenchmarkFatTreeComparison(b *testing.B) {
	figs := runFig(b, experiments.FatTreeComparison)
	for _, f := range figs {
		if f.ID != "fattree-afct" {
			continue
		}
		var tlb, ecmp float64
		for _, bar := range f.Bars {
			switch bar.Label {
			case "tlb":
				tlb = bar.Value
			case "ecmp":
				ecmp = bar.Value
			}
		}
		if tlb > 0 {
			b.ReportMetric(ecmp/tlb, "ecmpAFCT/tlbAFCT")
		}
	}
}

func BenchmarkExtendedBaselines(b *testing.B) {
	runFig(b, experiments.ExtendedBaselines)
}

// BenchmarkLargeScaleStream runs the streamed k=16 fat-tree scenario
// (figLS) at 10k flows — the tracked BENCH_6.json baseline for the
// streaming-stats scale path. Reported metrics: wall-clock flow
// throughput and the process's peak RSS (which must stay flow-count
// independent; EXPERIMENTS.md "Large scale" records the full-scale
// measurements).
func BenchmarkLargeScaleStream(b *testing.B) {
	figs := runFig(b, func(o experiments.Options) ([]experiments.Figure, error) {
		o.FlowsPerRun = 8 // x1250 = 10k flows
		return experiments.FigLS(o)
	})
	for _, f := range figs {
		if f.ID != "figLS" {
			continue
		}
		for _, bar := range f.Bars {
			switch bar.Label {
			case "ecmp flows/sec (wall)":
				b.ReportMetric(bar.Value, "flows/sec")
			case "ecmp peak RSS (MB)":
				b.ReportMetric(bar.Value, "peakRSS-MB")
			}
		}
	}
}
